package protocol

import (
	"math/rand"
	"sort"

	"cycledger/internal/simnet"
)

// Reactive (adaptive) adversary scheduling.
//
// The static fault models of faults.go are oblivious: they pick their
// victims before the run and cannot aim at the leaders the lottery just
// elected. This file closes that gap. At every round boundary — after the
// roster for the round is fixed, before any of its traffic moves — the
// engine snapshots an AdversaryView (who leads, who succeeds whom, who
// referees, who ranks where on reputation, and when each phase's deadline
// is expected to fall) and hands it to a budgeted planner. The planner
// compiles its decisions into the simnet.Adaptive plan: pure crash/mute
// windows and directed cuts that the existing Fate/Down machinery
// executes, so every determinism invariant of the fault layer (Fate once
// per message, Down pure over (now, node), par-1 ≡ par-N) survives
// untouched. Re-planning happens on the engine's round-driving goroutine
// while the network is idle, and only ever schedules windows at or after
// the current tick, so in-flight evaluation never observes a plan change.

// AdversaryView is the read-only protocol snapshot the adaptive planner
// targets from: everything a real network-level adversary could learn by
// watching one round of announcements.
type AdversaryView struct {
	// Round is the round about to run.
	Round uint64
	// Now is the virtual time of the snapshot (the round's start tick).
	Now simnet.Time
	// Leaders holds the round's leader of each committee, indexed by
	// committee.
	Leaders []simnet.NodeID
	// Successors holds each committee's succession order: the partial-set
	// members sorted ascending by ID, the order §V-D's eviction installs
	// replacements in (successorFor picks the lowest ID).
	Successors [][]simnet.NodeID
	// Referee is the referee committee C_R.
	Referee []simnet.NodeID
	// ReputationRank is the whole population ranked by reputation,
	// descending (ties by name) — the §IV-F ranking the referee committee
	// will draw next round's leaders from.
	ReputationRank []simnet.NodeID
	// PhaseWindows maps each network stage (config, semicommit, intra,
	// inter, score, select, certify) to its expected span as offsets from
	// Now: the previous round's measured stage spans when available,
	// otherwise an estimate from the synchrony bounds — including the tree
	// dissemination depth stretch under AggregateCerts.
	PhaseWindows map[string]simnet.Window
}

// AdversaryView snapshots the state a reactive adversary plans against.
// It allocates fresh slices, so callers may not mutate engine state
// through it.
func (e *Engine) AdversaryView() AdversaryView {
	v := AdversaryView{
		Round:   e.round,
		Now:     e.Net.Now(),
		Leaders: append([]simnet.NodeID(nil), e.roster.Leaders...),
		Referee: append([]simnet.NodeID(nil), e.roster.Referee...),
	}
	v.Successors = make([][]simnet.NodeID, len(e.roster.Partials))
	for k, ps := range e.roster.Partials {
		order := append([]simnet.NodeID(nil), ps...)
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		v.Successors[k] = order
	}
	byName := make(map[string]simnet.NodeID, len(e.names))
	for i, name := range e.names {
		byName[name] = simnet.NodeID(i)
	}
	ranked := e.reput.TopK(e.names, len(e.names))
	v.ReputationRank = make([]simnet.NodeID, len(ranked))
	for i, name := range ranked {
		v.ReputationRank[i] = byName[name]
	}
	v.PhaseWindows = e.phaseSchedule()
	return v
}

// phaseSchedule estimates, as offsets from the coming round's start, the
// window each network stage will occupy. After round 1 the estimate is
// simply the previous round's measured stage spans (the adversary watched
// the schedule happen); for the first round it is derived from the
// synchrony bounds Δ/Γ, stretched by the dissemination tree depth when
// aggregate certificates route committee broadcasts over the binomial
// tree.
func (e *Engine) phaseSchedule() map[string]simnet.Window {
	order := []string{"config", "semicommit", "intra", "inter", "score", "select", "certify"}
	spans := make(map[string]simnet.Time, len(order))
	if len(e.stageSpans) > 0 {
		for _, ph := range order {
			spans[ph] = e.stageSpans[ph]
		}
	} else {
		d, g := e.lat.Delta, e.lat.Gamma
		var stretch simnet.Time
		if e.P.AggregateCerts {
			stretch = simnet.Time(simnet.TreeDepth(e.P.C)) * d
		}
		spans["config"] = 2 + 2*d
		spans["semicommit"] = 2 + 2*g + stretch
		spans["intra"] = 2 + 6*d + stretch + 2*g // §IV-C collection deadline + result to C_R
		spans["inter"] = 2 + 4*g
		spans["score"] = 2 + 2*g + stretch
		spans["select"] = 2 + 2*g
		spans["certify"] = 2 + 2*g + 2*d
	}
	out := make(map[string]simnet.Window, len(order))
	var off simnet.Time
	for _, ph := range order {
		out[ph] = simnet.Window{From: off, To: off + spans[ph]}
		off += spans[ph]
	}
	return out
}

// adversaryPlanner spends AdaptiveSpec.Budget against each round's
// AdversaryView, appending directives to the simnet.Adaptive plan. Budget
// accounting: one unit buys one node crashed for the round, one node
// gray-failed for the round, or one committee's acting-seat→referee link
// cut around the intra result deadline. Allocation order (reactive mode):
//
//  1. crash the round's leaders (CrashLeaders),
//  2. gray-fail the reputation top-k, k capped at the leader count — the
//     likely next-round leaders (GrayTopK),
//  3. cut the acting seat's link to C_R bracketing the intra deadline
//     (BracketDeadlines),
//  4. chase succession: crash each committee's successors depth by depth
//     (CrashLeaders again).
//
// Static mode spends the identical budget crashing seed-random nodes for
// the same per-round window — the oblivious control arm of the resilience
// frontier.
type adversaryPlanner struct {
	spec   AdaptiveSpec
	model  *simnet.Adaptive
	n      int
	margin simnet.Time // bracket slack: the key-member synchrony bound Γ
	rng    *rand.Rand
}

func newAdversaryPlanner(spec AdaptiveSpec, model *simnet.Adaptive, n int, margin simnet.Time, seed int64) *adversaryPlanner {
	return &adversaryPlanner{
		spec:   spec,
		model:  model,
		n:      n,
		margin: margin,
		rng:    rand.New(rand.NewSource(seed ^ faultSeedAdapt)),
	}
}

// replan retires the previous round's directives and spends this round's
// budget against the view. It runs between rounds on the round-driving
// goroutine; the network is idle.
func (pl *adversaryPlanner) replan(v AdversaryView) {
	m := pl.model
	m.CloseOpen(v.Now)
	budget := pl.spec.Budget
	if pl.spec.Static {
		// Oblivious arm: same spend, no view. The RNG re-draws victims
		// every round so the comparison is against "budget random crashes
		// per round", not one fixed unlucky subset.
		for _, i := range pl.rng.Perm(pl.n) {
			if budget == 0 {
				return
			}
			m.Crash(simnet.NodeID(i), v.Now, 0)
			budget--
		}
		return
	}
	targeted := make(map[simnet.NodeID]bool)
	crash := func(id simnet.NodeID) {
		m.Crash(id, v.Now, 0)
		targeted[id] = true
		budget--
	}
	if pl.spec.CrashLeaders {
		for _, id := range v.Leaders {
			if budget == 0 {
				return
			}
			if !targeted[id] {
				crash(id)
			}
		}
	}
	if pl.spec.GrayTopK {
		k := len(v.Leaders)
		for _, id := range v.ReputationRank {
			if budget == 0 || k == 0 {
				break
			}
			if targeted[id] {
				continue
			}
			m.Mute(id, v.Now, 0)
			targeted[id] = true
			budget--
			k--
		}
		if budget == 0 {
			return
		}
	}
	if pl.spec.BracketDeadlines {
		from, to := pl.bracket(v)
		for k, leader := range v.Leaders {
			if budget == 0 {
				return
			}
			// Cut the seat that will actually hold the committee when the
			// deadline falls: the leader if it is still standing, else the
			// first successor the eviction machinery will install.
			seat := leader
			if targeted[seat] {
				seat = -1
				for _, s := range v.Successors[k] {
					if !targeted[s] {
						seat = s
						break
					}
				}
				if seat < 0 {
					continue
				}
			}
			m.Cut(seat, v.Referee, from, to)
			targeted[seat] = true
			budget--
		}
	}
	if pl.spec.CrashLeaders {
		for depth := 0; budget > 0; depth++ {
			any := false
			for _, succ := range v.Successors {
				if depth >= len(succ) {
					continue
				}
				any = true
				if id := succ[depth]; !targeted[id] {
					crash(id)
					if budget == 0 {
						return
					}
				}
			}
			if !any {
				return
			}
		}
	}
}

// bracket computes the absolute cut window around the intra result
// deadline: from the expected start of the intra stage until its expected
// end plus a Γ margin, so the certified result's flight to C_R falls
// inside the cut however the drain schedules it.
func (pl *adversaryPlanner) bracket(v AdversaryView) (from, to simnet.Time) {
	w := v.PhaseWindows["intra"]
	return v.Now + w.From, v.Now + w.To + 2*pl.margin
}
