// Package ledger implements the UTXO transaction model CycLedger's
// committees validate: transactions with multi-shard inputs and outputs,
// per-shard UTXO sets, and the authentication predicate V of §III-D
// (inputs exist, no double spend, inputs cover outputs).
//
// Users are statically partitioned into m shards; a UTXO lives in the shard
// of the user who owns it. A transaction is intra-shard when every input
// and output belongs to one shard, and cross-shard otherwise (§IV-C/D).
package ledger

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cycledger/internal/crypto"
)

// TxID uniquely identifies a transaction (hash of its canonical encoding).
type TxID = crypto.Digest

// OutPoint names one output of a prior transaction.
type OutPoint struct {
	Tx    TxID
	Index uint32
}

// String renders the outpoint for diagnostics.
func (o OutPoint) String() string {
	return fmt.Sprintf("%x:%d", o.Tx[:4], o.Index)
}

// Output is a spendable coin: an amount locked to a user.
type Output struct {
	Owner  string // user identity (shard = ShardOf(Owner, m))
	Amount uint64
}

// Tx is a transfer: it consumes the UTXOs named by Inputs and creates
// Outputs. Fee is implicit: sum(inputs) - sum(outputs).
type Tx struct {
	Inputs  []OutPoint
	Outputs []Output
	// Nonce distinguishes otherwise-identical transactions (e.g. two
	// equal payments between the same parties in one round).
	Nonce uint64
}

// encode produces the canonical byte encoding used for hashing.
func (tx *Tx) encode() []byte {
	var buf []byte
	var u64 [8]byte
	var u32 [4]byte
	binary.BigEndian.PutUint64(u64[:], tx.Nonce)
	buf = append(buf, u64[:]...)
	binary.BigEndian.PutUint32(u32[:], uint32(len(tx.Inputs)))
	buf = append(buf, u32[:]...)
	for _, in := range tx.Inputs {
		buf = append(buf, in.Tx[:]...)
		binary.BigEndian.PutUint32(u32[:], in.Index)
		buf = append(buf, u32[:]...)
	}
	binary.BigEndian.PutUint32(u32[:], uint32(len(tx.Outputs)))
	buf = append(buf, u32[:]...)
	for _, out := range tx.Outputs {
		binary.BigEndian.PutUint32(u32[:], uint32(len(out.Owner)))
		buf = append(buf, u32[:]...)
		buf = append(buf, out.Owner...)
		binary.BigEndian.PutUint64(u64[:], out.Amount)
		buf = append(buf, u64[:]...)
	}
	return buf
}

// ID returns the transaction hash.
func (tx *Tx) ID() TxID {
	return crypto.H([]byte("cycledger/tx/v1"), tx.encode())
}

// OutputSum returns the total value created by the transaction.
func (tx *Tx) OutputSum() uint64 {
	var s uint64
	for _, o := range tx.Outputs {
		s += o.Amount
	}
	return s
}

// ShardOf maps a user identity to its shard in [0, m).
func ShardOf(user string, m uint64) uint64 {
	return crypto.HString("cycledger/shard/v1", user).Mod(m)
}

// InputShards returns the sorted set of shards referenced by the
// transaction's inputs, given the owners recorded in the UTXO view.
// Unknown inputs are skipped (validation will reject them separately).
func InputShards(tx *Tx, view UTXOView, m uint64) []uint64 {
	set := map[uint64]bool{}
	for _, in := range tx.Inputs {
		if out, ok := view.Get(in); ok {
			set[ShardOf(out.Owner, m)] = true
		}
	}
	return sortedShardSet(set)
}

// OutputShards returns the sorted set of shards receiving outputs.
func OutputShards(tx *Tx, m uint64) []uint64 {
	set := map[uint64]bool{}
	for _, o := range tx.Outputs {
		set[ShardOf(o.Owner, m)] = true
	}
	return sortedShardSet(set)
}

// TouchedShards returns the union of input and output shards.
func TouchedShards(tx *Tx, view UTXOView, m uint64) []uint64 {
	set := map[uint64]bool{}
	for _, s := range InputShards(tx, view, m) {
		set[s] = true
	}
	for _, s := range OutputShards(tx, m) {
		set[s] = true
	}
	return sortedShardSet(set)
}

// IsCrossShard reports whether the transaction touches more than one shard.
func IsCrossShard(tx *Tx, view UTXOView, m uint64) bool {
	return len(TouchedShards(tx, view, m)) > 1
}

func sortedShardSet(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
