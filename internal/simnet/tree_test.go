package simnet

import "testing"

// TestTreeChildrenSpansAll: for every fan-out size the binomial tree must
// reach each non-root rank exactly once (it is a tree, not a DAG), and the
// hop count from the root never exceeds TreeDepth.
func TestTreeChildrenSpansAll(t *testing.T) {
	for n := 1; n <= 300; n++ {
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		for r := 0; r < n; r++ {
			for _, c := range TreeChildren(r, n) {
				if c <= r || c >= n {
					t.Fatalf("n=%d: rank %d has out-of-range child %d", n, r, c)
				}
				if parent[c] != -1 {
					t.Fatalf("n=%d: rank %d has two parents (%d and %d)", n, c, parent[c], r)
				}
				parent[c] = r
			}
		}
		depth := make([]int, n)
		for r := 1; r < n; r++ {
			if parent[r] == -1 {
				t.Fatalf("n=%d: rank %d unreachable", n, r)
			}
			depth[r] = depth[parent[r]] + 1
			if depth[r] > TreeDepth(n) {
				t.Fatalf("n=%d: rank %d at depth %d exceeds bound %d", n, r, depth[r], TreeDepth(n))
			}
		}
	}
}

// TestTreeChildrenEdges pins the boundary behaviours callers rely on.
func TestTreeChildrenEdges(t *testing.T) {
	if kids := TreeChildren(0, 1); len(kids) != 0 {
		t.Errorf("singleton tree has children %v", kids)
	}
	if kids := TreeChildren(-1, 8); kids != nil {
		t.Errorf("negative rank has children %v", kids)
	}
	if kids := TreeChildren(8, 8); kids != nil {
		t.Errorf("out-of-range rank has children %v", kids)
	}
	// Root of an 8-node tree sends to ranks 1, 2, 4 — log n egress.
	got := TreeChildren(0, 8)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("root children of 8: got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("root children of 8: got %v want %v", got, want)
		}
	}
	for n, want := range map[int]int{1: 0, 2: 1, 3: 2, 8: 3, 9: 4, 97: 7} {
		if d := TreeDepth(n); d != want {
			t.Errorf("TreeDepth(%d) = %d, want %d", n, d, want)
		}
	}
}
